package main

import (
	"bytes"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// serveArgs are a small, fast service-mode configuration shared by the
// CLI-level tests.
func serveArgs(extra ...string) []string {
	args := []string{
		"-serve", "-alg", "greedy", "-nodes", "40", "-pairs", "4",
		"-slots", "20", "-seed", "5",
		"-arrivals", "bursty;rate=2;burst-rate=8;switch=0.2;users=40;max-active=30",
	}
	return append(args, extra...)
}

// slotLines extracts the deterministic per-slot lines from a run's output.
func slotLines(out string) []string {
	var lines []string
	for _, l := range strings.Split(out, "\n") {
		if strings.HasPrefix(l, "slot ") {
			lines = append(lines, l)
		}
	}
	return lines
}

// TestServeKillResume is the CLI-level kill/resume invariant: crash a
// checkpointing run mid-way (-die-at), resume it, and the combined slot
// lines and final summary are byte-identical to an uninterrupted run.
func TestServeKillResume(t *testing.T) {
	dir := t.TempDir()

	var full bytes.Buffer
	if code := run(serveArgs(), &full, &full); code != 0 {
		t.Fatalf("uninterrupted run exited %d:\n%s", code, full.String())
	}
	want := slotLines(full.String())
	if len(want) != 20 {
		t.Fatalf("uninterrupted run printed %d slot lines", len(want))
	}

	var crash bytes.Buffer
	code := run(serveArgs("-ckpt-dir", dir, "-ckpt-every", "7", "-die-at", "11"), &crash, &crash)
	if code != 3 {
		t.Fatalf("crashed run exited %d, want 3:\n%s", code, crash.String())
	}
	if _, err := os.Stat(filepath.Join(dir, "greedy.ckpt")); err != nil {
		t.Fatalf("no checkpoint after crash: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "greedy.ckpt.json")); err != nil {
		t.Fatalf("no debug dump after crash: %v", err)
	}

	var resumed bytes.Buffer
	if code := run(serveArgs("-ckpt-dir", dir, "-ckpt-every", "7", "-resume"), &resumed, &resumed); code != 0 {
		t.Fatalf("resumed run exited %d:\n%s", code, resumed.String())
	}
	// Checkpoints land after slots 6 and 13; dying after slot 11 leaves
	// the slot-7 one as the latest.
	if !strings.Contains(resumed.String(), "# resume Greedy at slot 7") {
		t.Fatalf("resume did not pick up the slot-7 checkpoint:\n%s", resumed.String())
	}
	got := slotLines(resumed.String())
	if len(got) != 13 {
		t.Fatalf("resumed run printed %d slot lines, want 13", len(got))
	}
	for i, line := range got {
		if line != want[7+i] {
			t.Errorf("resumed slot line %d diverged:\n got %s\nwant %s", 7+i, line, want[7+i])
		}
	}
	wantSummary := full.String()[strings.Index(full.String(), "# Greedy service summary"):]
	gotSummary := resumed.String()[strings.Index(resumed.String(), "# Greedy service summary"):]
	if gotSummary != wantSummary {
		t.Errorf("resumed summary diverged:\n got %s\nwant %s", gotSummary, wantSummary)
	}

	// Resume is idempotent: a second resume has nothing to run and
	// reproduces the summary again.
	var again bytes.Buffer
	if code := run(serveArgs("-ckpt-dir", dir, "-resume"), &again, &again); code != 0 {
		t.Fatalf("second resume exited %d:\n%s", code, again.String())
	}
	if n := len(slotLines(again.String())); n != 0 {
		t.Errorf("second resume re-ran %d slots", n)
	}
	if !strings.HasSuffix(again.String(), wantSummary) {
		t.Errorf("second resume summary diverged:\n%s", again.String())
	}
}

// TestServeFlagValidation covers service-mode flag rejection paths.
func TestServeFlagValidation(t *testing.T) {
	cases := [][]string{
		serveArgs("-resume"),                            // -resume without -ckpt-dir
		serveArgs("-ckpt-dir", "x", "-ckpt-every", "0"), // bad cadence
		serveArgs("-arrivals", "mmpp;rate=1"),           // unknown process
	}
	for _, args := range cases {
		var out bytes.Buffer
		if code := run(args, &out, &out); code != 2 {
			t.Errorf("args %v exited %d, want 2:\n%s", args, code, out.String())
		}
	}
}

// TestServeResumeBeyondHorizon checks a checkpoint past -slots is an
// error, not a silent no-op.
func TestServeResumeBeyondHorizon(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	if code := run(serveArgs("-ckpt-dir", dir), &out, &out); code != 0 {
		t.Fatalf("run exited %d:\n%s", code, out.String())
	}
	var short bytes.Buffer
	if code := run(serveArgs("-ckpt-dir", dir, "-resume", "-slots", "10"), &short, &short); code != 1 {
		t.Errorf("resume past the horizon exited %d, want 1:\n%s", code, short.String())
	}
}

// TestJSONLTracerWriteErrorFailsRun pins the exit-code contract of a
// failing trace stream: buffered JSONL writes can first surface at the
// final flush, and a truncated trace must not exit 0.
func TestJSONLTracerWriteErrorFailsRun(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("needs /dev/full")
	}
	var out bytes.Buffer
	args := []string{
		"-alg", "greedy", "-nodes", "40", "-pairs", "4",
		"-trials", "1", "-slots", "1", "-trace-jsonl", "/dev/full",
	}
	if code := run(args, &out, &out); code == 0 {
		t.Fatalf("run with an unwritable trace stream exited 0:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "trace-jsonl") {
		t.Errorf("no trace-jsonl diagnostic in output:\n%s", out.String())
	}
}
