// Command seefig regenerates the data series behind the paper's evaluation
// figures (Figs. 2–7). Output is tab-separated, gnuplot-ready.
//
// Usage:
//
//	seefig -fig 3 -trials 20        # Fig. 3(a) sweep + (b)(c) CDFs
//	seefig -fig 2                   # Fig. 2 motivation table
//	seefig -fig all -trials 100     # everything, paper-scale trials
//
// Lower -trials for a quick look; the paper uses 100.
package main

import (
	"flag"
	"fmt"
	"os"

	"see/internal/experiment"
)

type figure struct {
	id  string
	run func(experiment.Params) (*experiment.Sweep, error)
	// cdfAt lists the sweep x-values whose per-pair CDFs the paper plots
	// as subfigures (b) and (c).
	cdfAt [2]float64
}

var figures = []figure{
	{"3", experiment.Fig3LinkCapacity, [2]float64{2, 7}},
	{"4", experiment.Fig4Alpha, [2]float64{1, 5}},
	{"5", experiment.Fig5SwapProb, [2]float64{0.5, 1.0}},
	{"6", experiment.Fig6Nodes, [2]float64{100, 500}},
	{"7", experiment.Fig7SDPairs, [2]float64{20, 50}},
}

func main() {
	var (
		fig    = flag.String("fig", "all", "figure to regenerate: 2..7 or all")
		trials = flag.Int("trials", 20, "trials per data point (paper: 100)")
		seed   = flag.Int64("seed", 20220101, "base random seed")
		cdfs   = flag.Bool("cdfs", true, "also print the (b)/(c) per-pair CDFs")
	)
	flag.Parse()

	if *fig == "2" || *fig == "all" {
		printMotivation()
		if *fig == "2" {
			return
		}
	}

	base := experiment.DefaultParams()
	base.Trials = *trials
	base.BaseSeed = *seed

	ran := false
	for _, f := range figures {
		if *fig != "all" && *fig != f.id {
			continue
		}
		ran = true
		sw, err := f.run(base)
		if err != nil {
			fmt.Fprintf(os.Stderr, "seefig: figure %s: %v\n", f.id, err)
			os.Exit(1)
		}
		fmt.Printf("### Figure %s(a)\n%s\n", f.id, sw.Table())
		if *cdfs {
			printCDFs(f, sw)
		}
	}
	if !ran && *fig != "all" && *fig != "2" {
		fmt.Fprintf(os.Stderr, "seefig: unknown -fig %q\n", *fig)
		os.Exit(2)
	}
}

func printMotivation() {
	r := experiment.Motivation()
	fmt.Println("### Figure 2 (motivation example, expected connections)")
	fmt.Printf("conventional (Fig. 2c)\t%.3f\n", r.Conventional)
	fmt.Printf("SEE (Fig. 2d)\t%.3f\n", r.SEE)
	fmt.Printf("improvement\t%.2fx\n\n", r.SEE/r.Conventional)
}

func printCDFs(f figure, sw *experiment.Sweep) {
	for sub, x := range f.cdfAt {
		for _, pt := range sw.Points {
			if pt.X != x {
				continue
			}
			fmt.Printf("### Figure %s(%c): per-SD-pair throughput CDF at %s = %g\n",
				f.id, 'b'+sub, sw.XLabel, x)
			for _, alg := range experiment.Algorithms {
				cdf := pt.Results[alg].PerPairCDF
				fmt.Printf("# %s\n", alg)
				fmt.Print(cdf.Table())
			}
			fmt.Println()
		}
	}
}
