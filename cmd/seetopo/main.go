// Command seetopo generates a Waxman quantum data network and prints its
// statistics: degree, link-length and single-link success-probability
// distributions, plus the candidate-segment census for a demand set. Useful
// for calibrating topologies against the paper's stated operating point
// (mean single-link success ≈ 0.8 at α = 2e-4).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"see/internal/graph"
	"see/internal/segment"
	"see/internal/topo"
	"see/internal/xrand"
)

func main() {
	var (
		nodes = flag.Int("nodes", 200, "number of quantum nodes")
		pairs = flag.Int("pairs", 20, "SD pairs for the segment census")
		alpha = flag.Float64("alpha", 2e-4, "attenuation parameter")
		seed  = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	cfg := topo.DefaultConfig()
	cfg.Nodes = *nodes
	cfg.Alpha = *alpha
	rng := xrand.New(*seed)
	net, err := topo.Generate(cfg, xrand.Split(rng))
	if err != nil {
		fmt.Fprintln(os.Stderr, "seetopo:", err)
		os.Exit(1)
	}
	st := topo.Summarize(net)
	fmt.Printf("nodes\t%d\nlinks\t%d\navg degree\t%.2f\nmean link\t%.0f km\nmedian link\t%.0f km\nmean link success\t%.3f\ncomponents\t%d\n",
		st.Nodes, st.Links, st.AvgDegree, st.MeanLinkKM, st.MedianLinkKM, st.MeanLinkProb, st.Components)

	// Degree histogram.
	hist := map[int]int{}
	maxDeg := 0
	for u := 0; u < net.NumNodes(); u++ {
		d := net.G.Degree(u)
		hist[d]++
		if d > maxDeg {
			maxDeg = d
		}
	}
	fmt.Println("\n# degree histogram")
	for d := 0; d <= maxDeg; d++ {
		if hist[d] > 0 {
			fmt.Printf("%d\t%d\n", d, hist[d])
		}
	}

	// SD-pair hop distances.
	sd := topo.ChooseSDPairs(net, *pairs, xrand.Split(rng))
	var hops []int
	for _, p := range sd {
		h := graph.BFSHops(net.G, p.S)[p.D]
		hops = append(hops, h)
	}
	sort.Ints(hops)
	fmt.Println("\n# SD pair hop distances (sorted)")
	for _, h := range hops {
		fmt.Printf("%d ", h)
	}
	fmt.Println()

	// Candidate segment census with SEE defaults.
	opts := segment.DefaultOptions()
	opts.MaxSegmentHops = 10
	set, err := segment.Build(net, sd, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "seetopo:", err)
		os.Exit(1)
	}
	byHops := map[int]int{}
	for _, list := range set.ByPair {
		for _, c := range list {
			byHops[c.Hops()]++
		}
	}
	fmt.Printf("\n# candidate segments: %d realizations over %d endpoint pairs\n",
		set.NumCandidates(), set.NumPairsWithCandidates())
	fmt.Println("# hops\tcount")
	var hs []int
	for h := range byHops {
		hs = append(hs, h)
	}
	sort.Ints(hs)
	for _, h := range hs {
		fmt.Printf("%d\t%d\n", h, byHops[h])
	}
}
