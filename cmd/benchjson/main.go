// Command benchjson converts `go test -bench` output into a committed JSON
// record so performance claims travel with the code. It reads the benchmark
// output on stdin and writes one JSON document with every parsed benchmark
// line plus an optional set of baseline numbers for comparison:
//
//	go test -bench=. -benchmem -run='^$' . |
//	    go run ./cmd/benchjson -out BENCH_PR2.json \
//	        -baseline BenchmarkColumnGeneration=663402285
//
// Each -baseline flag (repeatable) records a pre-change ns/op measurement
// under "baseline_ns_op"; the tool then reports the speedup of the matching
// current benchmark. Non-benchmark lines (figure tables, logs) pass through
// to stderr so the run stays readable.
//
// With -check it is a regression guard instead of a recorder: the stdin run
// is compared against a committed record and the exit status is non-zero if
// any benchmark present in both degraded past -min-ratio on -metric:
//
//	go test -bench=WorkloadSlots -benchtime=1x -run='^$' . |
//	    go run ./cmd/benchjson -check BENCH_PR9.json -metric slots/sec -min-ratio 0.8
//
// ns/op, B/op and allocs/op are lower-is-better; every other metric
// (slots/sec, custom b.ReportMetric units) is higher-is-better.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// benchResult is one parsed benchmark line. Metrics maps unit → value and
// always includes "ns/op"; with -benchmem it also has "B/op" and
// "allocs/op", plus any custom b.ReportMetric units.
type benchResult struct {
	Name    string             `json:"name"`
	Runs    int                `json:"runs"`
	Metrics map[string]float64 `json:"metrics"`
}

// benchFile is the JSON document layout.
type benchFile struct {
	Note         string             `json:"note,omitempty"`
	GoVersion    string             `json:"go_version"`
	GOOS         string             `json:"goos"`
	GOARCH       string             `json:"goarch"`
	GOMAXPROCS   int                `json:"gomaxprocs"`
	BaselineNsOp map[string]float64 `json:"baseline_ns_op,omitempty"`
	Speedup      map[string]float64 `json:"speedup_vs_baseline,omitempty"`
	Benchmarks   []benchResult      `json:"benchmarks"`
}

// baselineFlag collects repeated -baseline name=ns/op pairs.
type baselineFlag map[string]float64

func (b baselineFlag) String() string { return fmt.Sprint(map[string]float64(b)) }

func (b baselineFlag) Set(s string) error {
	name, val, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("want name=ns_per_op, got %q", s)
	}
	ns, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return fmt.Errorf("bad ns/op in %q: %w", s, err)
	}
	b[name] = ns
	return nil
}

func main() {
	baselines := baselineFlag{}
	out := flag.String("out", "", "output JSON path (default stdout)")
	note := flag.String("note", "", "free-form note stored in the document")
	check := flag.String("check", "", "committed benchmark JSON to guard against; exit non-zero on regression")
	metric := flag.String("metric", "ns/op", "with -check: metric to compare")
	minRatio := flag.Float64("min-ratio", 0.8, "with -check: minimum current/committed goodness ratio")
	flag.Var(baselines, "baseline", "pre-change ns/op as Name=value (repeatable)")
	flag.Parse()

	results := parse(os.Stdin)
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	if *check != "" {
		os.Exit(runCheck(*check, *metric, *minRatio, results))
	}

	doc := benchFile{
		Note:       *note,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Benchmarks: results,
	}
	if len(baselines) > 0 {
		doc.BaselineNsOp = baselines
		doc.Speedup = speedups(results, baselines)
	}

	enc, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(results), *out)
}

// lowerIsBetter reports whether a smaller metric value is an improvement
// (the standard go-test cost units; everything else is a rate or score).
func lowerIsBetter(metric string) bool {
	return metric == "ns/op" || metric == "B/op" || metric == "allocs/op"
}

// runCheck compares the parsed run against the committed record and returns
// the process exit code. A benchmark regresses when its goodness ratio —
// current/committed for higher-is-better metrics, committed/current for
// lower-is-better — falls below minRatio. Benchmarks missing on either
// side are skipped (the guard runs a narrowed -bench pattern); a committed
// file with no comparable benchmark at all is an error, since that means
// the guard silently checks nothing.
func runCheck(path, metric string, minRatio float64, results []benchResult) int {
	raw, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 1
	}
	var committed benchFile
	if err := json.Unmarshal(raw, &committed); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", path, err)
		return 1
	}
	want := make(map[string]float64, len(committed.Benchmarks))
	for _, r := range committed.Benchmarks {
		if v, ok := r.Metrics[metric]; ok && v > 0 {
			want[r.Name] = v
		}
	}

	compared, failed := 0, 0
	for _, r := range results {
		base, ok := want[r.Name]
		if !ok {
			continue
		}
		cur, ok := r.Metrics[metric]
		if !ok || cur <= 0 {
			continue
		}
		ratio := cur / base
		if lowerIsBetter(metric) {
			ratio = base / cur
		}
		compared++
		status := "ok"
		if ratio < minRatio {
			status = "REGRESSION"
			failed++
		}
		fmt.Fprintf(os.Stderr, "benchjson: %s %s: committed %.4g, current %.4g (ratio %.2f, floor %.2f) %s\n",
			r.Name, metric, base, cur, ratio, minRatio, status)
	}
	if compared == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: no benchmark in the run matches %s on %q — guard checked nothing\n", path, metric)
		return 1
	}
	if failed > 0 {
		return 1
	}
	return 0
}

// parse extracts benchmark result lines; everything else is echoed to
// stderr so table/log output from the run is not swallowed.
func parse(f *os.File) []benchResult {
	var results []benchResult
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		r, ok := parseLine(line)
		if !ok {
			fmt.Fprintln(os.Stderr, line)
			continue
		}
		results = append(results, r)
	}
	return results
}

// parseLine parses "BenchmarkName-8  3  315698322 ns/op  52542780 B/op ..."
// — a name, a run count, then (value, unit) pairs.
func parseLine(line string) (benchResult, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return benchResult{}, false
	}
	runs, err := strconv.Atoi(fields[1])
	if err != nil {
		return benchResult{}, false
	}
	r := benchResult{
		// Strip the -GOMAXPROCS suffix so names are stable across hosts.
		Name:    trimProcSuffix(fields[0]),
		Runs:    runs,
		Metrics: make(map[string]float64),
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return benchResult{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	if _, ok := r.Metrics["ns/op"]; !ok {
		return benchResult{}, false
	}
	return r, true
}

// trimProcSuffix removes a trailing "-<digits>" (the GOMAXPROCS marker) but
// leaves sub-benchmark paths like "/workers=4" intact.
func trimProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	suffix := name[i+1:]
	if suffix == "" {
		return name
	}
	for _, c := range suffix {
		if c < '0' || c > '9' {
			return name
		}
	}
	return name[:i]
}

// speedups computes baseline/current ns-per-op ratios for benchmarks that
// have a recorded baseline.
func speedups(results []benchResult, baselines map[string]float64) map[string]float64 {
	out := make(map[string]float64)
	for _, r := range results {
		base, ok := baselines[r.Name]
		if !ok || base <= 0 {
			continue
		}
		if ns := r.Metrics["ns/op"]; ns > 0 {
			// Two decimals is plenty for a headline ratio.
			out[r.Name] = float64(int(base/ns*100+0.5)) / 100
		}
	}
	if len(out) == 0 {
		return nil
	}
	// Warn about baselines that matched nothing (likely a renamed bench).
	var missing []string
	for name := range baselines {
		if _, ok := out[name]; !ok {
			missing = append(missing, name)
		}
	}
	sort.Strings(missing)
	for _, name := range missing {
		fmt.Fprintf(os.Stderr, "benchjson: baseline %q matched no benchmark\n", name)
	}
	return out
}
