// Command docscheck is the documentation gate wired into `make verify`.
// It enforces two repo conventions that plain `go vet` does not:
//
//  1. every package under internal/ (and the root package) carries a
//     package comment, so `go doc ./internal/...` always explains the
//     subsystem, and
//  2. every flag registered by cmd/seesim appears in README.md's flag
//     table, so the CLI surface and its documentation cannot drift apart.
//
// It exits non-zero with one line per violation.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	var problems []string

	pkgDirs, err := packageDirs(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "docscheck:", err)
		os.Exit(1)
	}
	for _, dir := range pkgDirs {
		ok, err := hasPackageComment(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "docscheck:", err)
			os.Exit(1)
		}
		if !ok {
			problems = append(problems, fmt.Sprintf("%s: package has no package comment", dir))
		}
	}

	flags, err := seesimFlags(filepath.Join(root, "cmd", "seesim", "main.go"))
	if err != nil {
		fmt.Fprintln(os.Stderr, "docscheck:", err)
		os.Exit(1)
	}
	readme, err := os.ReadFile(filepath.Join(root, "README.md"))
	if err != nil {
		fmt.Fprintln(os.Stderr, "docscheck:", err)
		os.Exit(1)
	}
	for _, name := range flags {
		if !strings.Contains(string(readme), "`-"+name) {
			problems = append(problems,
				fmt.Sprintf("README.md: seesim flag -%s is not documented in the flag table", name))
		}
	}

	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "docscheck:", p)
		}
		os.Exit(1)
	}
	fmt.Printf("docscheck: %d packages documented, %d seesim flags covered by README.md\n",
		len(pkgDirs), len(flags))
}

// packageDirs returns the root package directory plus every Go package
// directory under internal/.
func packageDirs(root string) ([]string, error) {
	dirs := []string{root}
	err := filepath.WalkDir(filepath.Join(root, "internal"), func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() && path != filepath.Join(root, "internal") {
			if matches, _ := filepath.Glob(filepath.Join(path, "*.go")); len(matches) > 0 {
				dirs = append(dirs, path)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// hasPackageComment reports whether any non-test file in dir carries a
// package doc comment.
func hasPackageComment(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	fset := token.NewFileSet()
	found := false
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.PackageClauseOnly)
		if err != nil {
			return false, err
		}
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			found = true
		}
	}
	return found, nil
}

// seesimFlags extracts the flag names registered via the flag package in
// the given file — package-level flag.String("name", ...) calls as well as
// method calls on a *flag.FlagSet variable named fs (the testable-main
// pattern: fs := flag.NewFlagSet(...); fs.String("name", ...)).
func seesimFlags(path string) ([]string, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, 0)
	if err != nil {
		return nil, err
	}
	var names []string
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok || (pkg.Name != "flag" && pkg.Name != "fs") {
			return true
		}
		switch sel.Sel.Name {
		case "String", "Bool", "Int", "Int64", "Uint", "Uint64", "Float64", "Duration":
		default:
			return true
		}
		lit, ok := call.Args[0].(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			return true
		}
		if name, err := strconv.Unquote(lit.Value); err == nil {
			names = append(names, name)
		}
		return true
	})
	if len(names) == 0 {
		return nil, fmt.Errorf("%s: no flag registrations found (parser out of date?)", path)
	}
	sort.Strings(names)
	return names, nil
}
