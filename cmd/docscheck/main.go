// Command docscheck is the documentation gate wired into `make verify`.
// It enforces two repo conventions that plain `go vet` does not:
//
//  1. every package under internal/ (and the root package) carries a
//     package comment, so `go doc ./internal/...` always explains the
//     subsystem,
//  2. every flag registered by cmd/seesim appears in README.md's flag
//     table, every `-flag` table row names a live flag (no stale rows
//     for removed flags), and a row that states a default states the
//     registered one, so the CLI surface and its documentation cannot
//     drift apart, and
//  3. the packages whose API contracts are taught by example (the LP
//     solver's warm restart, the flow solver's arena reuse) keep at
//     least one godoc Example, so `go doc` never loses the worked code.
//
// It exits non-zero with one line per violation.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	var problems []string

	pkgDirs, err := packageDirs(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "docscheck:", err)
		os.Exit(1)
	}
	for _, dir := range pkgDirs {
		ok, err := hasPackageComment(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "docscheck:", err)
			os.Exit(1)
		}
		if !ok {
			problems = append(problems, fmt.Sprintf("%s: package has no package comment", dir))
		}
	}

	flags, err := seesimFlags(filepath.Join(root, "cmd", "seesim", "main.go"))
	if err != nil {
		fmt.Fprintln(os.Stderr, "docscheck:", err)
		os.Exit(1)
	}
	readme, err := os.ReadFile(filepath.Join(root, "README.md"))
	if err != nil {
		fmt.Fprintln(os.Stderr, "docscheck:", err)
		os.Exit(1)
	}
	problems = append(problems, checkFlagTable(string(readme), flags)...)

	// The packages whose contracts are taught by worked godoc Examples
	// (DESIGN.md §9 links to both).
	for _, pkg := range []string{"internal/lp", "internal/flow"} {
		n, err := countExamples(filepath.Join(root, filepath.FromSlash(pkg)))
		if err != nil {
			fmt.Fprintln(os.Stderr, "docscheck:", err)
			os.Exit(1)
		}
		if n == 0 {
			problems = append(problems, fmt.Sprintf("%s: package has no godoc Example", pkg))
		}
	}

	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "docscheck:", p)
		}
		os.Exit(1)
	}
	fmt.Printf("docscheck: %d packages documented, %d seesim flags matched against README.md's flag table\n",
		len(pkgDirs), len(flags))
}

// checkFlagTable diffs README.md's seesim flag table against the flags
// actually registered: every flag must have a `| `-name ...` |` row, every
// row must name a live flag, and a row that mentions a default must contain
// the registered default value.
func checkFlagTable(readme string, flags []flagDef) []string {
	var problems []string

	// Table rows look like "| `-nodes <n>` | ... |"; collect name → row.
	rows := make(map[string]string)
	for _, line := range strings.Split(readme, "\n") {
		rest, ok := strings.CutPrefix(line, "| `-")
		if !ok {
			continue
		}
		name, _, ok := strings.Cut(rest, "`")
		if !ok {
			continue
		}
		name, _, _ = strings.Cut(name, " ")
		rows[name] = line
	}

	registered := make(map[string]bool, len(flags))
	for _, f := range flags {
		registered[f.Name] = true
		row, ok := rows[f.Name]
		if !ok {
			problems = append(problems,
				fmt.Sprintf("README.md: seesim flag -%s has no row in the flag table", f.Name))
			continue
		}
		if f.Default != "" && strings.Contains(row, "default") && !defaultDocumented(row, f.Default) {
			problems = append(problems,
				fmt.Sprintf("README.md: row for -%s states a default but not the registered one (%s)",
					f.Name, f.Default))
		}
	}
	stale := make([]string, 0)
	for name := range rows {
		if !registered[name] {
			stale = append(stale, name)
		}
	}
	sort.Strings(stale)
	for _, name := range stale {
		problems = append(problems,
			fmt.Sprintf("README.md: flag table row for -%s matches no registered seesim flag", name))
	}
	return problems
}

// defaultDocumented reports whether a table row documents the registered
// default: either the value's source text appears verbatim, or — for bool
// flags — the idiomatic "on/off by default" prose does.
func defaultDocumented(row, def string) bool {
	if strings.Contains(row, def) {
		return true
	}
	lower := strings.ToLower(row)
	switch def {
	case "true":
		return strings.Contains(lower, "on by default")
	case "false":
		return strings.Contains(lower, "off by default")
	}
	return false
}

// countExamples counts godoc Example functions in a package directory's
// test files.
func countExamples(dir string) (int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	fset := token.NewFileSet()
	n := 0
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, 0)
		if err != nil {
			return 0, err
		}
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if ok && fn.Recv == nil && strings.HasPrefix(fn.Name.Name, "Example") {
				n++
			}
		}
	}
	return n, nil
}

// packageDirs returns the root package directory plus every Go package
// directory under internal/.
func packageDirs(root string) ([]string, error) {
	dirs := []string{root}
	err := filepath.WalkDir(filepath.Join(root, "internal"), func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() && path != filepath.Join(root, "internal") {
			if matches, _ := filepath.Glob(filepath.Join(path, "*.go")); len(matches) > 0 {
				dirs = append(dirs, path)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// hasPackageComment reports whether any non-test file in dir carries a
// package doc comment.
func hasPackageComment(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	fset := token.NewFileSet()
	found := false
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.PackageClauseOnly)
		if err != nil {
			return false, err
		}
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			found = true
		}
	}
	return found, nil
}

// flagDef is one registered seesim flag: its name and, when the
// registration's default is a plain literal, that default's source text
// (string literals unquoted; empty when the default is a computed
// expression and cannot be compared against prose).
type flagDef struct {
	Name    string
	Default string
}

// seesimFlags extracts the flags registered via the flag package in the
// given file — package-level flag.String("name", ...) calls as well as
// method calls on a *flag.FlagSet variable named fs (the testable-main
// pattern: fs := flag.NewFlagSet(...); fs.String("name", ...)).
func seesimFlags(path string) ([]flagDef, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, 0)
	if err != nil {
		return nil, err
	}
	var flags []flagDef
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) < 2 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok || (pkg.Name != "flag" && pkg.Name != "fs") {
			return true
		}
		switch sel.Sel.Name {
		case "String", "Bool", "Int", "Int64", "Uint", "Uint64", "Float64", "Duration":
		default:
			return true
		}
		lit, ok := call.Args[0].(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			return true
		}
		name, err := strconv.Unquote(lit.Value)
		if err != nil {
			return true
		}
		flags = append(flags, flagDef{Name: name, Default: defaultText(call.Args[1])})
		return true
	})
	if len(flags) == 0 {
		return nil, fmt.Errorf("%s: no flag registrations found (parser out of date?)", path)
	}
	sort.Slice(flags, func(i, j int) bool { return flags[i].Name < flags[j].Name })
	return flags, nil
}

// defaultText renders a flag registration's default argument for prose
// comparison: literals as written (strings unquoted), identifiers (true,
// false) as their name, a negated literal with its sign, anything computed
// as "" (uncheckable).
func defaultText(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.BasicLit:
		if v.Kind == token.STRING {
			s, err := strconv.Unquote(v.Value)
			if err != nil {
				return ""
			}
			return s
		}
		return v.Value
	case *ast.Ident:
		return v.Name
	case *ast.UnaryExpr:
		if lit, ok := v.X.(*ast.BasicLit); ok && v.Op == token.SUB {
			return "-" + lit.Value
		}
	}
	return ""
}
