package see

import (
	"errors"
	"fmt"
	"math/rand"

	"see/internal/xrand"
)

// WorkloadConfig describes a multi-slot qubit workload: each SD pair
// receives data qubits to teleport at a fixed mean rate, queues them, and
// serves them with whatever entanglement connections its scheduler
// establishes each slot.
type WorkloadConfig struct {
	// Slots is the number of time slots to simulate.
	Slots int
	// ArrivalsPerPair is the mean number of data qubits arriving at each
	// SD pair per slot (fractional rates are Bernoulli-rounded).
	ArrivalsPerPair float64
	// QueueCap bounds each pair's backlog; arrivals beyond it are dropped
	// (0 means unbounded).
	QueueCap int
	// Seed drives arrivals and the scheduler's slots.
	Seed int64
}

// WorkloadResult aggregates a workload simulation.
type WorkloadResult struct {
	// Arrived counts data qubits offered to the network.
	Arrived int
	// Delivered counts data qubits teleported to their destinations.
	Delivered int
	// Dropped counts arrivals rejected by full queues.
	Dropped int
	// Backlog is the number of qubits still queued at the end.
	Backlog int
	// MeanLatencySlots is the average waiting time (in slots, 0 = same
	// slot as arrival) of delivered qubits.
	MeanLatencySlots float64
	// MaxBacklog is the largest queue total observed after any slot.
	MaxBacklog int
	// ThroughputPerSlot is Delivered / Slots.
	ThroughputPerSlot float64
	// PerPairDelivered breaks Delivered down by SD pair.
	PerPairDelivered []int
	// Carry reports the scheduler's cross-slot bank activity over the run
	// (zero for schedulers without CarryOver).
	Carry CarryStats
}

// RunWorkload drives a scheduler slot by slot against the workload. The
// scheduler establishes connections; each connection teleports the oldest
// queued qubit of its pair (an established connection with an empty queue
// is wasted — exactly the over-provisioning a batching controller avoids).
func RunWorkload(sched Scheduler, pairs int, w WorkloadConfig) (*WorkloadResult, error) {
	if sched == nil {
		return nil, errors.New("see: nil scheduler")
	}
	if w.Slots <= 0 {
		return nil, fmt.Errorf("see: Slots must be positive, got %d", w.Slots)
	}
	if w.ArrivalsPerPair < 0 {
		return nil, fmt.Errorf("see: negative arrival rate %v", w.ArrivalsPerPair)
	}
	rng := xrand.New(w.Seed)
	arrivalRng := xrand.Split(rng)
	slotRng := xrand.Split(rng)

	queues := make([][]int, pairs) // arrival slot per queued qubit
	res := &WorkloadResult{PerPairDelivered: make([]int, pairs)}
	var latencySum float64

	for slot := 0; slot < w.Slots; slot++ {
		// Arrivals.
		for i := 0; i < pairs; i++ {
			n := arrivals(arrivalRng, w.ArrivalsPerPair)
			for k := 0; k < n; k++ {
				res.Arrived++
				if w.QueueCap > 0 && len(queues[i]) >= w.QueueCap {
					res.Dropped++
					continue
				}
				queues[i] = append(queues[i], slot)
			}
		}
		// Service.
		out, err := sched.RunSlot(slotRng)
		if err != nil {
			return nil, fmt.Errorf("see: slot %d: %w", slot, err)
		}
		if len(out.PerPair) != pairs {
			return nil, fmt.Errorf("see: scheduler served %d pairs, workload has %d", len(out.PerPair), pairs)
		}
		for i, conns := range out.PerPair {
			served := min(conns, len(queues[i]))
			for k := 0; k < served; k++ {
				latencySum += float64(slot - queues[i][k])
				res.Delivered++
				res.PerPairDelivered[i]++
			}
			queues[i] = queues[i][served:]
		}
		backlog := 0
		for i := range queues {
			backlog += len(queues[i])
		}
		if backlog > res.MaxBacklog {
			res.MaxBacklog = backlog
		}
	}
	for i := range queues {
		res.Backlog += len(queues[i])
	}
	if res.Delivered > 0 {
		res.MeanLatencySlots = latencySum / float64(res.Delivered)
	}
	res.ThroughputPerSlot = float64(res.Delivered) / float64(w.Slots)
	res.Carry = SchedulerCarryStats(sched)
	return res, nil
}

// arrivals draws ⌊rate⌋ + Bernoulli(frac) arrivals.
func arrivals(rng *rand.Rand, rate float64) int {
	n := int(rate)
	if xrand.Bernoulli(rng, rate-float64(n)) {
		n++
	}
	return n
}
