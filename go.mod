module see

go 1.23
