// Serve runs the slot pipeline as a long-lived entanglement traffic
// server (DESIGN.md §8): a bursty arrival process generates requests with
// QoS classes and deadlines, an admission controller bounds the backlog,
// and the server reports throughput next to Jain fairness and per-class
// service rates. Half-way through, the full pipeline state — request
// queues, RNG cursor, arrival-process phase, tracer counters — is
// checkpointed to disk; a second server built from scratch resumes from
// the file and finishes the run, and the example verifies the resumed
// slot trace is byte-identical to the uninterrupted one.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"see"
)

const (
	slots = 60
	split = 30 // checkpoint-and-kill boundary
)

func main() {
	cfg := see.DefaultNetworkConfig()
	cfg.Nodes = 60
	net, pairs, err := see.GenerateNetwork(cfg, 6, 11)
	if err != nil {
		log.Fatal(err)
	}

	spec := "bursty;rate=1;burst-rate=6;switch=0.2;users=50;mix=2/3/5;deadline=3/6/12;max-active=40"
	fmt.Printf("service mode: %d slots, arrivals %q\n\n", slots, spec)

	dir, err := os.MkdirTemp("", "see-serve")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	ckpt := filepath.Join(dir, "greedy.ckpt")

	// Reference: one uninterrupted run.
	full := runServer(net, pairs, spec, slots, "", nil)

	// Interrupted run: serve the first half, checkpoint, and "crash" by
	// dropping the server on the floor.
	first := runServer(net, pairs, spec, split, ckpt, nil)

	// Resume: a brand-new server restores the file and serves the rest.
	rest := runServer(net, pairs, spec, slots, "", func(srv *see.TrafficServer) {
		if err := srv.ResumeFrom(ckpt); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("resumed from %s at slot %d\n\n", filepath.Base(ckpt), srv.Slot())
	})

	resumed := append(first, rest...)
	fmt.Printf("%-28s %-10s\n", "", "slot lines")
	fmt.Printf("%-28s %-10d\n", "uninterrupted run", len(full))
	fmt.Printf("%-28s %-10d\n", "checkpoint + resume", len(resumed))
	for i := range full {
		if full[i] != resumed[i] {
			log.Fatalf("slot %d diverged after resume:\n full    %s\n resumed %s", i, full[i], resumed[i])
		}
	}
	fmt.Println("\nevery slot line identical: the checkpoint captured the full pipeline state.")
}

// runServer builds a fresh Greedy scheduler + traffic server, optionally
// restores it (prep), serves until the horizon, optionally checkpoints at
// the end (ckpt), and returns the per-slot trace lines. The final report
// is printed only for full-horizon runs.
func runServer(net *see.Network, pairs []see.SDPair, spec string, horizon int, ckpt string, prep func(*see.TrafficServer)) []string {
	tracer := see.NewCountingTracer()
	sched, err := see.NewScheduler(see.Greedy, net, pairs, &see.SchedulerOptions{Tracer: tracer})
	if err != nil {
		log.Fatal(err)
	}
	scfg, err := see.ParseArrivalSpec(spec)
	if err != nil {
		log.Fatal(err)
	}
	scfg.Seed = 7
	scfg.Tracer = tracer
	srv, err := see.NewTrafficServer(sched, len(pairs), scfg)
	if err != nil {
		log.Fatal(err)
	}
	if prep != nil {
		prep(srv)
	}

	var lines []string
	err = srv.Run(horizon-srv.Slot(), func(st *see.ServeSlotStats) error {
		lines = append(lines, fmt.Sprintf("slot %3d arrived=%d admitted=%d expired=%d served=%d backlog=%d",
			st.Slot, st.Arrived, st.Admitted, st.Expired, st.Served, st.Backlog))
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	if ckpt != "" {
		if err := srv.WriteCheckpoint(ckpt); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("checkpointed %s at slot %d (+ %s.json debug dump)\n\n",
			filepath.Base(ckpt), srv.Slot(), filepath.Base(ckpt))
	}

	if srv.Slot() == slots {
		r := srv.Report()
		fmt.Printf("report: served %d/%d, throughput %.3f/slot, fairness %.3f, backlog %d\n",
			r.Served, r.Arrived, r.Throughput, r.Fairness, r.Backlog)
		for c, name := range []string{"gold", "silver", "bronze"} {
			cr := r.PerClass[c]
			fmt.Printf("  %-7s served %3d/%3d rate=%.3f expired=%d latency=%.2f slots\n",
				name, cr.Served, cr.Arrived, cr.ServiceRate, cr.Expired, cr.MeanLatency)
		}
		fmt.Println()
	}
	return lines
}
