// Sweep runs a reduced-scale version of the paper's Fig. 3 experiment:
// network throughput versus per-link channel capacity for SEE, REPS and
// E2E, plus the per-SD-pair throughput CDF at the largest capacity.
package main

import (
	"fmt"
	"log"

	"see"
)

func main() {
	fmt.Println("throughput vs link capacity (reduced scale: 80 nodes, 8 pairs, 10 trials)")
	fmt.Printf("%-10s %-10s %-10s %-10s\n", "capacity", "SEE", "REPS", "E2E")

	var last map[see.Algorithm]see.PointResult
	for _, channels := range []int{2, 3, 4, 5} {
		p := see.DefaultExperimentParams()
		p.Nodes = 80
		p.SDPairs = 8
		p.Channels = channels
		p.Trials = 10
		res, err := see.RunExperiment(p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10d %-10.2f %-10.2f %-10.2f\n",
			channels,
			res[see.SEE].MeanThroughput,
			res[see.REPS].MeanThroughput,
			res[see.E2E].MeanThroughput)
		last = res
	}

	fmt.Println("\nper-SD-pair throughput CDF at capacity 5 (first trial):")
	for _, alg := range []see.Algorithm{see.SEE, see.REPS, see.E2E} {
		pr := last[alg]
		fmt.Printf("%-5s:", alg)
		for i := range pr.CDFXs {
			fmt.Printf("  P(x<=%g)=%.2f", pr.CDFXs[i], pr.CDFPs[i])
		}
		fmt.Printf("   (Jain fairness %.2f)\n", pr.Jain)
	}
}
