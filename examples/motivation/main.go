// Motivation reproduces the paper's Fig. 2 example on the 6-node fixture:
// the conventional entanglement-link solution expects 0.729 connections per
// slot, while the segmented solution expects 1.489 — the 2x headline of the
// paper — and then verifies both numbers by Monte-Carlo simulation of the
// actual schedulers.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"see"
)

func main() {
	conv, seg := see.MotivationExample()
	fmt.Println("Fig. 2 example (analytic expected connections per slot)")
	fmt.Printf("  conventional links + swap (Fig. 2c): %.3f\n", conv)
	fmt.Printf("  segmented establishment   (Fig. 2d): %.3f\n", seg)
	fmt.Printf("  improvement: %.2fx\n\n", seg/conv)

	// Monte-Carlo the real schedulers on the same fixture. REPS plays the
	// role of the conventional solution (entanglement links only); SEE
	// should land between the conventional optimum and the ideal 1.489
	// (its LP-rounding pipeline plans probabilistically).
	net, pairs := see.MotivationNetwork()
	const slots = 20000
	for _, alg := range []see.Algorithm{see.SEE, see.REPS, see.E2E} {
		sched, err := see.NewScheduler(alg, net, pairs, nil)
		if err != nil {
			log.Fatal(err)
		}
		rng := rand.New(rand.NewSource(1))
		total := 0
		for s := 0; s < slots; s++ {
			res, err := sched.RunSlot(rng)
			if err != nil {
				log.Fatal(err)
			}
			total += res.Established
		}
		fmt.Printf("%-5s mean throughput over %d slots: %.3f connections/slot\n",
			alg, slots, float64(total)/slots)
	}
}
