// Faults demonstrates the robustness layer: deterministic fault injection
// (node crashes, link outages, control-message loss, memory decoherence)
// and graceful degradation of the LP scheduler to the greedy fallback when
// its solve budget is exceeded. Every event streams to a JSONL trace.
package main

import (
	"bufio"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"see"
	"see/internal/chaos"
	"see/internal/core"
	"see/internal/protocol"
	"see/internal/topo"
	"see/internal/xrand"
)

const slots = 5

func main() {
	cfg := see.DefaultNetworkConfig()
	cfg.Nodes = 60
	net, pairs, err := see.GenerateNetwork(cfg, 8, 42)
	if err != nil {
		log.Fatal(err)
	}
	st := net.Stats()
	fmt.Printf("network: %d nodes, %d links, %d SD pairs\n", st.Nodes, st.Links, len(pairs))

	// A compact fault spec: node 3 crashes from slot 1 on, link 10 flaps
	// for slots 2-3, 10%% of control messages are dropped (and retried
	// with backoff), and 2%% of created segments decohere in memory.
	spec := "seed=7;node=3@1-;link=10@2-3;loss=0.10;decohere=0.02"
	plan, err := see.ParseFaultSpec(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fault plan: %s\n\n", plan)

	// Baseline: the same instance without faults.
	fmt.Printf("=== SEE, no faults ===\n")
	clean := runSEE(net, pairs, &see.SchedulerOptions{})

	// Same instance, same slot seeds, faults on. Every fault decision is
	// derived from the plan seed, so this run is fully reproducible — and
	// a zero plan would be byte-identical to the run above.
	fmt.Printf("\n=== SEE, faults injected ===\n")
	tracer := see.NewCountingTracer()
	trace := filepath.Join(os.TempDir(), "see-faults.jsonl")
	f, err := os.Create(trace)
	if err != nil {
		log.Fatal(err)
	}
	jt := see.NewJSONLTracer(f)
	faulty := runSEE(net, pairs, &see.SchedulerOptions{
		Faults: plan,
		Tracer: see.MultiTracer(tracer, jt),
	})
	if err := jt.Close(); err != nil {
		log.Fatal(err)
	}
	c := tracer.Counts()
	fmt.Printf("incidents: faults=%d degraded=%d msg_drop=%d\n",
		c.IncidentCount(see.IncidentFault),
		c.IncidentCount(see.IncidentDegraded),
		c.IncidentCount(see.IncidentMessageDrop))
	fmt.Printf("throughput: %d established without faults, %d with\n", clean, faulty)
	showTrace(trace)

	// Degradation ladder: an impossible 1ns solve budget forces every slot
	// onto the greedy non-LP fallback — the slots still complete and
	// establish connections instead of the run aborting.
	fmt.Printf("\n=== SEE, 1ns solve budget (forced degradation) ===\n")
	degTracer := see.NewCountingTracer()
	degraded := runSEE(net, pairs, &see.SchedulerOptions{
		SlotBudget: time.Nanosecond,
		Tracer:     degTracer,
	})
	dc := degTracer.Counts()
	fmt.Printf("degraded slots: %d, LP retries: %d, established: %d\n",
		dc.IncidentCount(see.IncidentDegraded), dc.IncidentCount(see.IncidentRetry), degraded)

	// Lossy control plane: the §II-F protocol session on the Fig. 2
	// fixture with 15% of controller/node messages dropped in transit.
	// The bus retries each drop with exponential backoff, so single drops
	// are absorbed instead of aborting the slot.
	fmt.Printf("\n=== protocol session over a lossy bus ===\n")
	mnet, mpairs := topo.Motivation()
	session, err := protocol.NewSession(mnet, mpairs, core.DefaultOptions(), xrand.New(11))
	if err != nil {
		log.Fatal(err)
	}
	inj, err := chaos.NewInjector(&chaos.FaultPlan{Seed: 7, MsgLoss: 0.15}, mnet)
	if err != nil {
		log.Fatal(err)
	}
	session.Bus.Faults = inj.DropDelivery
	busTracer := see.NewCountingTracer()
	session.Controller.Tracer = busTracer
	out, err := session.RunSlot(xrand.New(3))
	if err != nil {
		log.Fatal(err)
	}
	bc := busTracer.Counts()
	fmt.Printf("established %d connections; %d deliveries, %d drops, %d retries, %d lost for good\n",
		out.Established, session.Bus.Delivered(),
		bc.IncidentCount(see.IncidentMessageDrop),
		bc.IncidentCount(see.IncidentMessageRetry), session.Bus.Lost())
}

// runSEE runs the fixed slot schedule and returns total established
// connections. Every run uses the same slot seeds so the configurations
// are comparable.
func runSEE(net *see.Network, pairs []see.SDPair, opts *see.SchedulerOptions) int {
	sched, err := see.NewScheduler(see.SEE, net, pairs, opts)
	if err != nil {
		log.Fatal(err)
	}
	rng := xrand.New(7)
	total := 0
	for s := 0; s < slots; s++ {
		res, err := sched.RunSlot(rng)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("slot %d: %3d attempts, %3d segments, %2d established\n",
			s, res.Attempts, res.SegmentsCreated, res.Established)
		total += res.Established
	}
	return total
}

// showTrace prints the first few JSONL events of the streamed slot log.
func showTrace(path string) {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	lines := 0
	sc := bufio.NewScanner(f)
	fmt.Printf("JSONL trace (%s):\n", path)
	for sc.Scan() {
		if lines < 4 {
			fmt.Printf("  %s\n", sc.Text())
		}
		lines++
	}
	fmt.Printf("  ... %d events total\n", lines)
}
