// Workload drives the three schedulers against the same multi-slot qubit
// workload (the scenario the paper's introduction motivates: networking
// quantum computers that continuously produce qubits to teleport) and
// compares delivery rate, queueing latency and — using the Werner-state
// extension — the fidelity of the delivered entanglement.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"see"
	"see/internal/core"
	"see/internal/qnet"
	"see/internal/reps"
	"see/internal/topo"
	"see/internal/xrand"
)

func main() {
	cfg := see.DefaultNetworkConfig()
	cfg.Nodes = 100
	net, pairs, err := see.GenerateNetwork(cfg, 10, 21)
	if err != nil {
		log.Fatal(err)
	}
	w := see.WorkloadConfig{Slots: 50, ArrivalsPerPair: 0.6, QueueCap: 20, Seed: 5}

	fmt.Printf("workload: %d slots, %.1f qubits/pair/slot offered, queue cap %d\n\n",
		w.Slots, w.ArrivalsPerPair, w.QueueCap)
	fmt.Printf("%-5s %-10s %-10s %-10s %-12s %-10s\n",
		"alg", "arrived", "delivered", "dropped", "latency", "backlog")
	for _, alg := range []see.Algorithm{see.SEE, see.REPS, see.E2E} {
		sched, err := see.NewScheduler(alg, net, pairs, nil)
		if err != nil {
			log.Fatal(err)
		}
		res, err := see.RunWorkload(sched, len(pairs), w)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-5s %-10d %-10d %-10d %-12.2f %-10d\n",
			alg, res.Arrived, res.Delivered, res.Dropped, res.MeanLatencySlots, res.Backlog)
	}

	// Fidelity comparison (Werner-state extension): SEE's connections use
	// fewer swaps but longer optical segments than REPS's link chains.
	fmt.Println("\nmean delivered-entanglement fidelity (Werner model, 30 slots):")
	model := qnet.DefaultFidelityModel()
	rawNet, err := topo.Generate(topoConfig(cfg), xrand.New(21^0x5ee))
	if err != nil {
		log.Fatal(err)
	}
	rawPairs := topo.ChooseSDPairs(rawNet, 10, xrand.New(22))
	lengthOf := func(s *qnet.Segment) float64 { return rawNet.PathLengthKM(s.Cand.Path) }

	seeEng, err := core.NewEngine(rawNet, rawPairs, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	repsEng, err := reps.NewEngine(rawNet, rawPairs, reps.Options{})
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	var fSEE, fREPS float64
	var nSEE, nREPS int
	for slot := 0; slot < 30; slot++ {
		sres, err := seeEng.RunSlot(rng)
		if err != nil {
			log.Fatal(err)
		}
		for _, c := range sres.Connections {
			fSEE += model.ConnectionFidelity(c, lengthOf)
			nSEE++
		}
		rres, err := repsEng.RunSlot(rng)
		if err != nil {
			log.Fatal(err)
		}
		for _, c := range rres.Connections {
			fREPS += model.ConnectionFidelity(c, lengthOf)
			nREPS++
		}
	}
	fmt.Printf("  SEE : %.4f over %d connections\n", fSEE/float64(nSEE), nSEE)
	fmt.Printf("  REPS: %.4f over %d connections\n", fREPS/float64(nREPS), nREPS)
}

func topoConfig(cfg see.NetworkConfig) topo.Config {
	t := topo.DefaultConfig()
	t.Nodes = cfg.Nodes
	t.Channels = cfg.Channels
	t.Memory = cfg.Memory
	t.SwapProb = cfg.SwapProb
	t.Alpha = cfg.Alpha
	t.Delta = cfg.Delta
	return t
}
