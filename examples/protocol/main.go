// Protocol demonstrates the control plane of §II-F on the Fig. 2 fixture:
// a central controller and six node agents execute one SEE time slot by
// exchanging typed messages — segment-creation orders, all-optical circuit
// setups, photon arrivals, swap orders and the final teleportation with its
// classical correction bits. The message trace is printed as it happens.
package main

import (
	"fmt"
	"log"

	"see/internal/core"
	"see/internal/protocol"
	"see/internal/qnet"
	"see/internal/topo"
	"see/internal/xrand"
)

var names = map[protocol.NodeID]string{
	protocol.ControllerID:         "CTRL",
	protocol.NodeID(topo.MotivS1): "s1",
	protocol.NodeID(topo.MotivS2): "s2",
	protocol.NodeID(topo.MotivR1): "r1",
	protocol.NodeID(topo.MotivR2): "r2",
	protocol.NodeID(topo.MotivD1): "d1",
	protocol.NodeID(topo.MotivD2): "d2",
}

func main() {
	net, pairs := topo.Motivation()
	rng := xrand.New(11)
	session, err := protocol.NewSession(net, pairs, core.DefaultOptions(), rng)
	if err != nil {
		log.Fatal(err)
	}
	session.Bus.Trace = func(env protocol.Envelope) {
		fmt.Printf("  %4s -> %-4s %v\n", names[env.From], names[env.To], env.Msg)
	}

	fmt.Println("=== one SEE time slot over the control plane ===")
	out, err := session.RunSlot(xrand.Split(rng))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nslot summary: %d creation attempts ordered, %d segments realized, %d connections established, %d messages\n",
		out.AttemptsOrdered, out.SegmentsRealized, out.Established, out.Messages)

	// Show the teleported states end to end.
	for connID := 0; connID < 8; connID++ {
		for _, src := range session.Nodes {
			sent := src.SentQubit(connID)
			if sent == nil {
				continue
			}
			for _, dst := range session.Nodes {
				got := dst.ReceivedQubit(connID)
				if got == nil {
					continue
				}
				fmt.Printf("connection %d: %s teleported a qubit to %s with fidelity %.4f\n",
					connID, names[src.ID], names[dst.ID], qnet.Fidelity(sent, got))
			}
		}
	}
}
