// Quickstart: generate a quantum data network, run one SEE time slot, and
// print what happened. Start here.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"see"
)

func main() {
	// A 100-node quantum data network in a 10,000 km x 10,000 km area with
	// the paper's default resources, plus 10 source-destination pairs that
	// want entanglement connections.
	cfg := see.DefaultNetworkConfig()
	cfg.Nodes = 100
	net, pairs, err := see.GenerateNetwork(cfg, 10, 42)
	if err != nil {
		log.Fatal(err)
	}
	st := net.Stats()
	fmt.Printf("network: %d nodes, %d links, avg degree %.1f, mean link success %.2f\n",
		st.Nodes, st.Links, st.AvgDegree, st.MeanLinkProb)

	// SEE = segmented entanglement establishment: multi-hop all-optical
	// segments stitched together with quantum swapping.
	sched, err := see.NewScheduler(see.SEE, net, pairs, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LP upper bound on expected throughput: %.2f connections/slot\n",
		sched.UpperBound())

	// Each time slot: the controller plans segments, nodes attempt to
	// create them, swaps stitch the survivors into connections, and every
	// established connection teleports exactly one data qubit.
	rng := rand.New(rand.NewSource(7))
	total := 0
	const slots = 10
	for s := 0; s < slots; s++ {
		res, err := sched.RunSlot(rng)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("slot %2d: attempted %3d segment creations, %3d succeeded, established %2d connections\n",
			s, res.Attempts, res.SegmentsCreated, res.Established)
		total += res.Established
	}
	fmt.Printf("throughput: %.1f qubits/slot over %d slots\n", float64(total)/slots, slots)
}
