package see

import (
	"testing"
)

func workloadScheduler(t *testing.T) (Scheduler, int) {
	t.Helper()
	cfg := DefaultNetworkConfig()
	cfg.Nodes = 50
	net, pairs, err := GenerateNetwork(cfg, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := NewScheduler(SEE, net, pairs, nil)
	if err != nil {
		t.Fatal(err)
	}
	return sched, len(pairs)
}

func TestRunWorkloadValidation(t *testing.T) {
	sched, pairs := workloadScheduler(t)
	if _, err := RunWorkload(nil, pairs, WorkloadConfig{Slots: 1}); err == nil {
		t.Fatal("nil scheduler accepted")
	}
	if _, err := RunWorkload(sched, pairs, WorkloadConfig{Slots: 0}); err == nil {
		t.Fatal("zero slots accepted")
	}
	if _, err := RunWorkload(sched, pairs, WorkloadConfig{Slots: 1, ArrivalsPerPair: -1}); err == nil {
		t.Fatal("negative rate accepted")
	}
	if _, err := RunWorkload(sched, pairs+1, WorkloadConfig{Slots: 1, ArrivalsPerPair: 1}); err == nil {
		t.Fatal("pair-count mismatch accepted")
	}
}

func TestRunWorkloadConservation(t *testing.T) {
	sched, pairs := workloadScheduler(t)
	res, err := RunWorkload(sched, pairs, WorkloadConfig{
		Slots:           30,
		ArrivalsPerPair: 0.8,
		Seed:            11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Arrived != res.Delivered+res.Dropped+res.Backlog {
		t.Fatalf("qubits not conserved: %d arrived, %d delivered + %d dropped + %d backlog",
			res.Arrived, res.Delivered, res.Dropped, res.Backlog)
	}
	if res.Dropped != 0 {
		t.Fatal("unbounded queue must not drop")
	}
	sum := 0
	for _, d := range res.PerPairDelivered {
		sum += d
	}
	if sum != res.Delivered {
		t.Fatal("per-pair deliveries do not sum")
	}
	if res.MeanLatencySlots < 0 {
		t.Fatal("negative latency")
	}
	if res.ThroughputPerSlot != float64(res.Delivered)/30 {
		t.Fatal("throughput mismatch")
	}
}

func TestRunWorkloadQueueCap(t *testing.T) {
	sched, pairs := workloadScheduler(t)
	res, err := RunWorkload(sched, pairs, WorkloadConfig{
		Slots:           30,
		ArrivalsPerPair: 5, // overload
		QueueCap:        3,
		Seed:            13,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped == 0 {
		t.Fatal("overloaded capped queue must drop")
	}
	if res.Backlog > pairs*3 {
		t.Fatalf("backlog %d exceeds cap x pairs", res.Backlog)
	}
	if res.MaxBacklog > pairs*3 {
		t.Fatalf("max backlog %d exceeds cap x pairs", res.MaxBacklog)
	}
}

func TestRunWorkloadDeterministic(t *testing.T) {
	sched1, pairs := workloadScheduler(t)
	sched2, _ := workloadScheduler(t)
	w := WorkloadConfig{Slots: 20, ArrivalsPerPair: 1, Seed: 7}
	a, err := RunWorkload(sched1, pairs, w)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunWorkload(sched2, pairs, w)
	if err != nil {
		t.Fatal(err)
	}
	if a.Delivered != b.Delivered || a.Arrived != b.Arrived || a.MeanLatencySlots != b.MeanLatencySlots {
		t.Fatalf("workload not deterministic: %+v vs %+v", a, b)
	}
}

func TestRunWorkloadLightLoadLowLatency(t *testing.T) {
	// At a trickle arrival rate, most qubits should be served within a few
	// slots (the scheduler establishes several connections per slot).
	sched, pairs := workloadScheduler(t)
	res, err := RunWorkload(sched, pairs, WorkloadConfig{
		Slots:           50,
		ArrivalsPerPair: 0.2,
		Seed:            17,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Arrived == 0 {
		t.Fatal("no arrivals at rate 0.2 over 50 slots")
	}
	deliveredFrac := float64(res.Delivered) / float64(res.Arrived)
	if deliveredFrac < 0.5 {
		t.Fatalf("light load delivered only %.0f%%", deliveredFrac*100)
	}
}
