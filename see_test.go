package see

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestGenerateNetworkAndStats(t *testing.T) {
	cfg := DefaultNetworkConfig()
	cfg.Nodes = 50
	net, pairs, err := GenerateNetwork(cfg, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if net.NumNodes() != 50 {
		t.Fatalf("nodes = %d", net.NumNodes())
	}
	if len(pairs) != 5 {
		t.Fatalf("pairs = %d", len(pairs))
	}
	st := net.Stats()
	if st.Nodes != 50 || st.Links != net.NumLinks() || st.AvgDegree <= 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.MeanLinkProb < 0.5 || st.MeanLinkProb > 1 {
		t.Fatalf("mean link prob = %v", st.MeanLinkProb)
	}
	// Determinism.
	net2, pairs2, err := GenerateNetwork(cfg, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if net2.NumLinks() != net.NumLinks() || pairs2[0] != pairs[0] {
		t.Fatal("same seed produced a different network")
	}
}

func TestNewSchedulerValidation(t *testing.T) {
	net, pairs := MotivationNetwork()
	if _, err := NewScheduler(SEE, nil, pairs, nil); err == nil {
		t.Fatal("nil network accepted")
	}
	if _, err := NewScheduler(Algorithm(99), net, pairs, nil); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestAllSchedulersRun(t *testing.T) {
	cfg := DefaultNetworkConfig()
	cfg.Nodes = 40
	net, pairs, err := GenerateNetwork(cfg, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []Algorithm{SEE, REPS, E2E} {
		sched, err := NewScheduler(alg, net, pairs, nil)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if sched.Algorithm() != alg {
			t.Fatalf("Algorithm() = %v, want %v", sched.Algorithm(), alg)
		}
		if sched.UpperBound() < 0 {
			t.Fatalf("%v: negative upper bound", alg)
		}
		total := 0
		for slot := 0; slot < 10; slot++ {
			res, err := sched.RunSlot(rand.New(rand.NewSource(int64(slot))))
			if err != nil {
				t.Fatalf("%v: %v", alg, err)
			}
			if res.Established < 0 || len(res.PerPair) != len(pairs) {
				t.Fatalf("%v: malformed result %+v", alg, res)
			}
			sum := 0
			for _, c := range res.PerPair {
				sum += c
			}
			if sum != res.Established {
				t.Fatalf("%v: PerPair sum mismatch", alg)
			}
			total += res.Established
		}
		if alg != E2E && total == 0 {
			t.Fatalf("%v: established nothing in 10 slots", alg)
		}
	}
}

func TestSchedulerDeterministicPerSeed(t *testing.T) {
	net, pairs := MotivationNetwork()
	sched, err := NewScheduler(SEE, net, pairs, nil)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := sched.RunSlot(rand.New(rand.NewSource(3)))
	b, _ := sched.RunSlot(rand.New(rand.NewSource(3)))
	if a.Established != b.Established || a.Attempts != b.Attempts {
		t.Fatal("scheduler not deterministic per seed")
	}
}

func TestMotivationExampleValues(t *testing.T) {
	conv, seeVal := MotivationExample()
	if math.Abs(conv-0.729) > 1e-9 {
		t.Fatalf("conventional = %v, want 0.729", conv)
	}
	if math.Abs(seeVal-1.4885) > 1e-9 {
		t.Fatalf("SEE = %v, want 1.4885 (paper rounds to 1.489)", seeVal)
	}
}

func TestRunExperimentSmall(t *testing.T) {
	p := DefaultExperimentParams()
	p.Nodes = 40
	p.SDPairs = 4
	p.Trials = 3
	res, err := RunExperiment(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []Algorithm{SEE, REPS, E2E} {
		pr, ok := res[alg]
		if !ok {
			t.Fatalf("missing %v", alg)
		}
		if pr.MeanThroughput < 0 {
			t.Fatalf("%v: negative throughput", alg)
		}
		if pr.Jain < 0 || pr.Jain > 1+1e-9 {
			t.Fatalf("%v: Jain = %v", alg, pr.Jain)
		}
		if len(pr.CDFXs) != len(pr.CDFPs) {
			t.Fatalf("%v: CDF length mismatch", alg)
		}
	}
	if res[SEE].MeanThroughput < res[E2E].MeanThroughput*0.5 {
		t.Fatal("SEE implausibly weak vs E2E")
	}
}

func TestSchedulerOptionsAblation(t *testing.T) {
	net, pairs := MotivationNetwork()
	strict, err := NewScheduler(SEE, net, pairs, &SchedulerOptions{StrictProvisioning: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := strict.RunSlot(rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	// With 1 channel per link, the paper-literal ESC cannot reach expected
	// coverage, so nothing is attempted.
	if res.Attempts != 0 {
		t.Fatalf("strict mode attempted %d", res.Attempts)
	}
	if _, err := NewScheduler(SEE, net, pairs, &SchedulerOptions{PlainObjective: true, KPaths: 2, MaxSegmentHops: 2, MinSegmentProb: 0.01}); err != nil {
		t.Fatal(err)
	}
}

func TestFigureAPI(t *testing.T) {
	p := DefaultExperimentParams()
	p.Nodes = 30
	p.SDPairs = 3
	p.Trials = 1
	fd, err := Figure(5, p)
	if err != nil {
		t.Fatal(err)
	}
	if fd.Name == "" || len(fd.Points) < 2 {
		t.Fatalf("figure data malformed: %+v", fd)
	}
	for _, pt := range fd.Points {
		if _, ok := pt.Results[SEE]; !ok {
			t.Fatal("missing SEE result")
		}
	}
	if _, err := Figure(99, p); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestNSFNETNetworkAndLoad(t *testing.T) {
	net, err := NSFNETNetwork(DefaultNetworkConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if net.NumNodes() != 14 || net.NumLinks() != 21 {
		t.Fatalf("NSFNET = %d nodes, %d links", net.NumNodes(), net.NumLinks())
	}
	pairs := ChoosePairs(net, 4, 2)
	if len(pairs) != 4 {
		t.Fatalf("pairs = %d", len(pairs))
	}
	// All three schedulers must run on the reference topology.
	for _, alg := range []Algorithm{SEE, REPS, E2E} {
		sched, err := NewScheduler(alg, net, pairs, nil)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if _, err := sched.RunSlot(rand.New(rand.NewSource(5))); err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
	}
	// Loader surface.
	spec := "node 0 0 0\nnode 1 500 0\nlink 0 1\n"
	small, err := LoadNetwork(strings.NewReader(spec), DefaultNetworkConfig(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if small.NumNodes() != 2 {
		t.Fatal("loaded network wrong")
	}
	if _, err := LoadNetwork(strings.NewReader("garbage\n"), DefaultNetworkConfig(), 3); err == nil {
		t.Fatal("garbage spec accepted")
	}
}

func TestSchedulerTracerObservesAllEngines(t *testing.T) {
	net, pairs := MotivationNetwork()
	for _, alg := range Algorithms {
		tr := NewCountingTracer()
		sc, err := NewScheduler(alg, net, pairs, &SchedulerOptions{Tracer: tr})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		for slot := 0; slot < 10; slot++ {
			if _, err := sc.RunSlot(rand.New(rand.NewSource(int64(slot)))); err != nil {
				t.Fatalf("%v: %v", alg, err)
			}
		}
		c := tr.Counts()
		if c.Slots != 10 {
			t.Errorf("%v: Slots = %d, want 10", alg, c.Slots)
		}
		if c.AttemptsReserved == 0 || c.AttemptsResolved == 0 {
			t.Errorf("%v: no attempt events observed: %+v", alg, c)
		}
		phases := 0
		for ph := Phase(0); ph < 4; ph++ {
			phases += tr.PhaseLatency(ph).N
		}
		if phases == 0 {
			t.Errorf("%v: no phase-latency events observed", alg)
		}
	}
}

func TestNetworkConfigExplicitZero(t *testing.T) {
	// Sparse configs keep the paper defaults...
	def := DefaultNetworkConfig()
	sparse := NetworkConfig{Nodes: 30}.toTopo()
	if sparse.SwapProb != def.SwapProb || sparse.Alpha != def.Alpha || sparse.Delta != def.Delta {
		t.Fatalf("sparse config lost defaults: %+v", sparse)
	}
	// ...while ExplicitZero forces an actual zero.
	zeroed := NetworkConfig{Nodes: 30, SwapProb: ExplicitZero, Alpha: ExplicitZero, Delta: ExplicitZero}.toTopo()
	if zeroed.SwapProb != 0 || zeroed.Alpha != 0 || zeroed.Delta != 0 {
		t.Fatalf("ExplicitZero not honored: %+v", zeroed)
	}
	// A q=0 network can create segments but never completes a swap, so SEE
	// still establishes single-segment connections only.
	cfg := DefaultNetworkConfig()
	cfg.Nodes = 40
	cfg.SwapProb = ExplicitZero
	net, pairs, err := GenerateNetwork(cfg, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewCountingTracer()
	sc, err := NewScheduler(SEE, net, pairs, &SchedulerOptions{Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	for slot := 0; slot < 5; slot++ {
		if _, err := sc.RunSlot(rand.New(rand.NewSource(int64(slot)))); err != nil {
			t.Fatal(err)
		}
	}
	if c := tr.Counts(); c.SwapsSucceeded != 0 {
		t.Fatalf("q=0 network succeeded %d swaps", c.SwapsSucceeded)
	}
}

func TestChoosePairsWithTraffic(t *testing.T) {
	cfg := DefaultNetworkConfig()
	cfg.Nodes = 50
	net, _, err := GenerateNetwork(cfg, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	for _, pattern := range []Traffic{TrafficUniform, TrafficHotspot, TrafficGravity} {
		pairs := ChoosePairsWithTraffic(net, 8, pattern, 4)
		if len(pairs) != 8 {
			t.Fatalf("pattern %d: got %d pairs", pattern, len(pairs))
		}
		// Pairs must be schedulable.
		if _, err := NewScheduler(SEE, net, pairs, nil); err != nil {
			t.Fatalf("pattern %d: %v", pattern, err)
		}
	}
}
