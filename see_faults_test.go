package see

import (
	"reflect"
	"testing"
	"time"

	"see/internal/xrand"
)

// TestFaultsZeroPlanIdentical checks the public determinism contract: a
// scheduler built with an explicit zero FaultPlan is byte-identical to one
// built without the fault layer, for every algorithm including Greedy.
func TestFaultsZeroPlanIdentical(t *testing.T) {
	net, pairs, err := GenerateNetwork(NetworkConfig{Nodes: 40}, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range append(append([]Algorithm(nil), Algorithms...), Greedy) {
		t.Run(alg.String(), func(t *testing.T) {
			run := func(opts *SchedulerOptions) []SlotResult {
				sc, err := NewScheduler(alg, net, pairs, opts)
				if err != nil {
					t.Fatal(err)
				}
				rng := xrand.New(77)
				var out []SlotResult
				for s := 0; s < 5; s++ {
					res, err := sc.RunSlot(rng)
					if err != nil {
						t.Fatal(err)
					}
					out = append(out, *res)
				}
				return out
			}
			plain := run(nil)
			zero := run(&SchedulerOptions{Faults: &FaultPlan{}})
			if !reflect.DeepEqual(plain, zero) {
				t.Fatalf("zero fault plan changed results:\n%+v\nvs\n%+v", plain, zero)
			}
		})
	}
}

// TestSlotBudgetDegrades forces degradation through the public API: an
// impossible budget must still complete slots with attempted paths, and
// the tracer must count every degraded slot.
func TestSlotBudgetDegrades(t *testing.T) {
	net, pairs, err := GenerateNetwork(NetworkConfig{Nodes: 40}, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewCountingTracer()
	sc, err := NewScheduler(SEE, net, pairs, &SchedulerOptions{
		SlotBudget: time.Nanosecond,
		Tracer:     tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(9)
	attempts := 0
	const slots = 3
	for s := 0; s < slots; s++ {
		res, err := sc.RunSlot(rng)
		if err != nil {
			t.Fatalf("slot %d: %v", s, err)
		}
		attempts += res.Attempts
	}
	if attempts == 0 {
		t.Error("degraded slots attempted no paths")
	}
	if got := tr.Counts().IncidentCount(IncidentDegraded); got != slots {
		t.Errorf("degraded incidents = %d, want %d", got, slots)
	}
}

// TestFaultSpecParsingAndValidation exercises ParseFaultSpec and the
// network-bound validation inside NewScheduler.
func TestFaultSpecParsingAndValidation(t *testing.T) {
	plan, err := ParseFaultSpec("seed=7;node=3@2-5;loss=0.05")
	if err != nil {
		t.Fatal(err)
	}
	if plan.Seed != 7 || plan.MsgLoss != 0.05 || len(plan.NodeOutages) != 1 {
		t.Fatalf("parsed plan wrong: %+v", plan)
	}
	if _, err := ParseFaultSpec("loss=nope"); err == nil {
		t.Error("bad spec accepted")
	}
	// A plan referencing a node the network does not have must be rejected
	// at scheduler construction.
	net, pairs := MotivationNetwork()
	bad, err := ParseFaultSpec("node=999@0-")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewScheduler(SEE, net, pairs, &SchedulerOptions{Faults: bad}); err == nil {
		t.Error("out-of-range fault plan accepted")
	}
}

// TestExperimentWithFaultsDeterministic runs the experiment harness with a
// fault plan twice (different worker counts) and expects identical numbers:
// every engine gets its own injector, so concurrency cannot leak between
// fault streams.
func TestExperimentWithFaultsDeterministic(t *testing.T) {
	plan, err := ParseFaultSpec("seed=5;node=2@0-;decohere=0.1")
	if err != nil {
		t.Fatal(err)
	}
	base := ExperimentParams{Nodes: 30, SDPairs: 4, Trials: 3, Seed: 11, Faults: plan}
	r1, err := RunExperiment(base)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunExperiment(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range Algorithms {
		if r1[alg].MeanThroughput != r2[alg].MeanThroughput {
			t.Errorf("%v: faulty experiment not deterministic: %v vs %v",
				alg, r1[alg].MeanThroughput, r2[alg].MeanThroughput)
		}
	}
}
